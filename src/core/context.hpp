// Heap-allocated activation frames ("contexts") and their arena.
//
// A context is the paper's heap activation record: it stores the method id,
// the resume point (pc) into the method's parallel version, saved arguments
// and locals, and — crucially — the future slots themselves. Futures living
// *inside* the context (rather than being separately heap-allocated, as in
// StackThreads) is one of the paper's design points: touching a future is one
// indirection, and a reply carries (context, slot).
//
// The return continuation lives at a fixed location in every context
// (`Context::ret`), which is what makes proxy contexts and the
// continuation-forwarding fallback work (Sec. 3.2.3 / 3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/continuation.hpp"
#include "core/ids.hpp"
#include "core/global_ref.hpp"
#include "core/value.hpp"
#include "support/arena.hpp"
#include "support/panic.hpp"

namespace concert {

/// One future slot: a value plus a full/empty bit. Saved locals reuse the
/// same slots with the bit pre-set.
struct FutureSlot {
  Value value;
  bool full = false;
};

/// Scheduling state of a context.
enum class ContextStatus : std::uint8_t {
  Free,     ///< In the arena freelist.
  Ready,    ///< In the node's ready queue.
  Running,  ///< Currently executing its parallel version step.
  Waiting,  ///< Suspended until `join` future slots fill.
  Proxy,    ///< Not schedulable: stands in for a stored/forwarded continuation.
};

class Context {
 public:
  // --- identity (immutable once allocated) ---
  NodeId home = kInvalidNode;
  ContextId id = kInvalidContext;
  std::uint32_t gen = 0;

  // --- activation state ---
  MethodId method = kInvalidMethod;
  std::uint32_t pc = 0;          ///< Resume point in the parallel version.
  GlobalRef self;                ///< Target object of the invocation.
  std::vector<Value> args;       ///< Saved invocation arguments.
  Continuation ret;              ///< Fixed-location return continuation.
  std::uint32_t join = 0;        ///< Unfilled futures before this context may resume.
  ContextStatus status = ContextStatus::Free;
  bool reverted = false;         ///< True once fallen back: stay in the parallel version.
  bool holds_lock = false;       ///< This activation holds self's implicit lock.

  // --- observability (concert-scope; written only when tracing/metrics on) ---
  std::uint64_t trace_flow = 0;  ///< Causal id of the pending Suspend, re-recorded at Resume.
  std::uint64_t born_ns = 0;     ///< Wall-clock allocation stamp for the lifetime histogram.

  ContextRef ref() const { return ContextRef{home, id, gen}; }

  // --- future/local slots ---
  std::size_t slot_count() const { return slots_.size(); }
  void resize_slots(std::size_t n) { slots_.assign(n, FutureSlot{}); }

  /// Declares slot `s` an empty future awaiting a reply; bumps `join`.
  void expect(SlotId s) {
    CONCERT_CHECK(s < slots_.size(), "slot " << s << " out of range " << slots_.size());
    slots_[s].full = false;
    ++join;
  }

  /// Stores a value into a future slot. Returns true if this fill released
  /// the context (join reached zero). Does NOT enqueue — the caller (reply
  /// routing in the node) does that, because enqueueing is a scheduler action.
  bool fill(SlotId s, const Value& v) {
    CONCERT_CHECK(s < slots_.size(), "slot " << s << " out of range " << slots_.size());
    CONCERT_CHECK(!slots_[s].full, "double fill of slot " << s << " in context " << ref());
    slots_[s].value = v;
    slots_[s].full = true;
    CONCERT_CHECK(join > 0, "fill with join==0 in context " << ref());
    return --join == 0;
  }

  /// Adoption guard: holds the context un-runnable while its owner is still
  /// saving state into it during unwinding. A continuation materialized on a
  /// not-yet-adopted context could be replied through *synchronously* (e.g. a
  /// barrier releasing on the last arrival); the guard keeps `join` positive
  /// until the owner finishes, so the premature fill cannot enqueue a
  /// half-built activation. Released via Node::release_guard.
  void add_guard() { ++join; }

  /// Stores a saved local (no join accounting).
  void save(SlotId s, const Value& v) {
    CONCERT_CHECK(s < slots_.size(), "slot " << s << " out of range " << slots_.size());
    slots_[s].value = v;
    slots_[s].full = true;
  }

  const Value& get(SlotId s) const {
    CONCERT_CHECK(s < slots_.size(), "slot " << s << " out of range " << slots_.size());
    CONCERT_CHECK(slots_[s].full, "read of empty slot " << s << " in context " << ref());
    return slots_[s].value;
  }

  bool slot_full(SlotId s) const {
    CONCERT_CHECK(s < slots_.size(), "slot " << s << " out of range " << slots_.size());
    return slots_[s].full;
  }

  /// ASan hardening (no-op otherwise): a freed-but-retained context keeps its
  /// grown slot/arg buffers for the next activation, so a stale raw pointer
  /// into a recycled activation would silently read the *next* activation's
  /// futures. Poisoning the buffers while the context sits in the freelist
  /// turns that into a trap at the faulting load. The Context header itself
  /// (status, gen) stays readable — the generation check depends on it.
  void poison_storage() {
    arena_poison(slots_.data(), slots_.capacity() * sizeof(FutureSlot));
    arena_poison(args.data(), args.capacity() * sizeof(Value));
  }
  void unpoison_storage() {
    arena_unpoison(slots_.data(), slots_.capacity() * sizeof(FutureSlot));
    arena_unpoison(args.data(), args.capacity() * sizeof(Value));
  }

 private:
  std::vector<FutureSlot> slots_;
};

/// Per-node pool of contexts with id recycling and generation tagging.
///
/// ContextRefs travel in messages, so contexts must be nameable by stable ids
/// rather than raw pointers; the generation counter turns stale-ref bugs into
/// immediate ProtocolErrors instead of silent corruption.
///
/// Storage is a per-node slab arena (support/arena.hpp): contexts are carved
/// out of slabs in allocation order instead of one `new` each, so fresh-id
/// allocation touches the allocator once per slab, recycled-id allocation
/// never, and contexts allocated together share cache lines. A recycled
/// context keeps its grown slot/arg capacity (the steady-state activation
/// path performs no heap traffic at all) but its buffers are ASan-poisoned
/// while free — see Context::poison_storage.
class ContextArena {
 public:
  explicit ContextArena(NodeId home) : home_(home) {}
  ~ContextArena();

  ContextArena(const ContextArena&) = delete;
  ContextArena& operator=(const ContextArena&) = delete;

  /// Allocates a context with `slots` future/local slots. When `recycled` is
  /// non-null it reports whether the id came from the freelist (allocation
  /// accounting; the caller owns the NodeStats).
  Context& alloc(MethodId method, std::size_t slots, bool* recycled = nullptr);

  /// Returns a context to the freelist. The context must not be enqueued.
  void free(Context& ctx);

  /// Resolves a ref, checking node, id and generation.
  Context& resolve(const ContextRef& ref);

  /// Resolve, or nullptr if the ref is stale/invalid (used by tests).
  Context* try_resolve(const ContextRef& ref);
  const Context* try_resolve(const ContextRef& ref) const;

  /// Looks up a live context by id regardless of generation (scheduler use:
  /// queued contexts cannot be freed, so their id is a stable name).
  Context* try_resolve_any_gen(ContextId id) {
    if (id >= pool_.size()) return nullptr;
    Context* ctx = pool_[id];
    return ctx->status == ContextStatus::Free ? nullptr : ctx;
  }
  const Context* try_resolve_any_gen(ContextId id) const {
    if (id >= pool_.size()) return nullptr;
    const Context* ctx = pool_[id];
    return ctx->status == ContextStatus::Free ? nullptr : ctx;
  }

  /// Number of live (non-free) contexts; the test suite asserts this returns
  /// to zero after every program, i.e. no leaked activations.
  std::size_t live_count() const { return live_; }

  std::size_t capacity() const { return pool_.size(); }

  /// Bytes reserved in context slabs (headers only; slot/arg buffers are
  /// owned by the contexts themselves).
  std::size_t slab_bytes() const { return slab_.slab_bytes(); }

  /// Quiescence housekeeping: canonicalizes the freelist so the lowest ids
  /// are reused first — the next run allocates in the same order a fresh
  /// arena would, keeping reuse deterministic across runs on one machine and
  /// concentrating traffic on the oldest (warmest) slabs. Live contexts
  /// (e.g. a driver's root proxy) are untouched.
  void reset_at_quiescence();

 private:
  NodeId home_;
  SlabArena<Context> slab_{kContextSlabSlots};
  std::vector<Context*> pool_;  ///< id -> stable slab address.
  std::vector<ContextId> freelist_;
  std::size_t live_ = 0;

  static constexpr std::size_t kContextSlabSlots = 64;
};

}  // namespace concert
