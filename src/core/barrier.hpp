// A user-level barrier built from first-class continuations (paper Sec. 3.3).
//
// Arriving at the barrier is a Continuation-Passing method: each arrival
// *stores its continuation* in the barrier object; the final arrival replies
// through every stored continuation, releasing all waiters at once. This is
// exactly the "user defined synchronization structures like barriers" case
// the paper uses to motivate proxy contexts: an arrival from a remote node
// runs on the handler stack through a proxy, stores the off-node
// continuation, and no heap context is ever allocated on the barrier's node.
//
// The reply value is the barrier generation (an i64), so phased algorithms
// can sanity-check which release they observed. Barriers are reusable: the
// release resets the arrival count and bumps the generation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/continuation.hpp"
#include "core/registry.hpp"
#include "machine/machine.hpp"

namespace concert {

struct BarrierState {
  explicit BarrierState(int expected_arrivals) : expected(expected_arrivals) {}
  int expected;
  std::int64_t generation = 0;
  std::vector<Continuation> waiters;
};

struct BarrierMethods {
  MethodId arrive = kInvalidMethod;
};

/// Registers the barrier's method pair (seq CP version + parallel version).
/// Call once per registry, before finalize().
BarrierMethods register_barrier_methods(MethodRegistry& reg);

/// Creates a reusable barrier object on `home` expecting `expected` arrivals
/// per phase. The object is owned by the node.
GlobalRef make_barrier(Machine& machine, NodeId home, int expected);

/// Object-space type tag for barrier objects.
inline constexpr std::uint32_t kBarrierType = 0xBA44u;

}  // namespace concert
