#include "core/analysis.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace concert {

FlowFacts compute_flow_facts(const std::vector<MethodInfo>& methods) {
  const std::size_t n = methods.size();
  FlowFacts f;
  f.may_block.assign(n, 0);
  f.needs_continuation.assign(n, 0);
  f.site_may_block.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    f.may_block[i] = methods[i].blocks_locally ? 1 : 0;
    f.needs_continuation[i] = methods[i].uses_continuation ? 1 : 0;
    // The site-sensitive seed keeps every behaviour the method *itself* can
    // exhibit when plainly called: blocking, storing its continuation
    // (defers the reply), forwarding it (ditto), and implicit locking
    // (conservative — lock contention diverts the call before the stack
    // convention is entered, but a locking activation's completion is what
    // releases the lock, so we never claim NB-at-site for it).
    f.site_may_block[i] = (methods[i].blocks_locally || methods[i].uses_continuation ||
                           !methods[i].forwards_to.empty() || methods[i].locks_self)
                              ? 1
                              : 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (MethodId c : methods[i].forwards_to) {
      if (c >= n) continue;  // dangling edge: reported by the linter
      // Forwarding passes the continuation explicitly: the forwarder needs
      // its caller's info to hand over, and the target receives a
      // continuation it may manipulate — both ends require the CP interface.
      f.needs_continuation[i] = 1;
      f.needs_continuation[c] = 1;
    }
  }
  // A method that can take its continuation can defer its reply arbitrarily,
  // so its callers must treat the call as blocking. Seed this before the
  // fixpoint so it propagates up the call graph.
  for (std::size_t i = 0; i < n; ++i) {
    if (f.needs_continuation[i]) f.may_block[i] = 1;
  }

  // Least fixpoint; the graph is small (a program's method count), so simple
  // iteration to convergence is fine and obviously correct. may_block and
  // site_may_block propagate over the same call edges; only their seeds
  // differ (site_may_block never inherits forward-target CP-ness, so a
  // method whose only sin is calling a forward target stays site-NB).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (f.may_block[i] && f.site_may_block[i]) continue;
      for (MethodId c : methods[i].callees) {
        if (c >= n) continue;
        if (!f.may_block[i] && f.may_block[c]) {
          f.may_block[i] = 1;
          changed = true;
        }
        if (!f.site_may_block[i] && f.site_may_block[c]) {
          f.site_may_block[i] = 1;
          changed = true;
        }
      }
      // (needs_continuation is not transitive over plain calls: a method that
      // merely *calls* a CP method builds a fresh CallerInfo at the call
      // site; only forwarding edges — handled above — propagate the need.)
    }
  }
  return f;
}

Schema schema_from_facts(bool may_block, bool needs_continuation) {
  // Forwarding a continuation into a callee only makes sense if the chain
  // can actually consume it somewhere; a forward into a subgraph that never
  // uses continuations is treated as a plain call (matches the compiler,
  // which would never emit the CP convention there).
  if (needs_continuation) return Schema::ContinuationPassing;
  if (may_block) return Schema::MayBlock;
  return Schema::NonBlocking;
}

void analyze_schemas(std::vector<MethodInfo>& methods) {
  const std::size_t n = methods.size();
  for (auto& m : methods) {
    for (MethodId c : m.callees) CONCERT_CHECK(c < n, m.name << " calls bad method id " << c);
    for (MethodId c : m.forwards_to) {
      CONCERT_CHECK(c < n, m.name << " forwards to bad id " << c);
    }
  }

  const FlowFacts f = compute_flow_facts(methods);
  for (std::size_t i = 0; i < n; ++i) {
    MethodInfo& m = methods[i];
    m.may_block = f.may_block[i] != 0;
    m.needs_continuation = f.needs_continuation[i] != 0;
    m.schema = schema_from_facts(m.may_block, m.needs_continuation);
    m.site_nonblocking = f.site_may_block[i] == 0;
    // Implicit locking releases at activation completion, which for a CP
    // method may be delegated through its continuation — undecidable at the
    // call site. The compiler would reject such a class; so do we.
    CONCERT_CHECK(!(m.locks_self && m.schema == Schema::ContinuationPassing),
                  m.name << ": implicit locking is not supported on CP methods");
    CONCERT_CHECK(m.multi_return >= 1 && m.multi_return <= 8,
                  m.name << ": multi_return out of range");
    CONCERT_CHECK(!(m.multi_return > 1 && m.schema == Schema::ContinuationPassing),
                  m.name << ": multiple return values are not supported on CP methods");
  }

  // Per-edge refinement (concert-analyze): a plain call edge i -> c can bind
  // the NB convention at the site when c provably completes on the caller's
  // stack (site-NB) — forwarding edges are excluded, since handing the
  // continuation over *is* the CP convention. Sorted + deduplicated so the
  // dispatch tables' per-caller spans can be probed deterministically.
  for (std::size_t i = 0; i < n; ++i) {
    MethodInfo& m = methods[i];
    m.nb_site_callees.clear();
    for (MethodId c : m.callees) {
      if (c >= n) continue;
      if (f.site_may_block[c] != 0) continue;
      if (std::find(m.forwards_to.begin(), m.forwards_to.end(), c) != m.forwards_to.end()) {
        continue;
      }
      m.nb_site_callees.push_back(c);
    }
    std::sort(m.nb_site_callees.begin(), m.nb_site_callees.end());
    m.nb_site_callees.erase(std::unique(m.nb_site_callees.begin(), m.nb_site_callees.end()),
                            m.nb_site_callees.end());
  }
}

}  // namespace concert
