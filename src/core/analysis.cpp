#include "core/analysis.hpp"

#include "support/panic.hpp"

namespace concert {

void analyze_schemas(std::vector<MethodInfo>& methods) {
  const std::size_t n = methods.size();
  for (auto& m : methods) {
    m.may_block = m.blocks_locally;
    m.needs_continuation = m.uses_continuation;
    for (MethodId c : m.callees) CONCERT_CHECK(c < n, m.name << " calls bad method id " << c);
  }
  for (auto& m : methods) {
    for (MethodId c : m.forwards_to) {
      CONCERT_CHECK(c < n, m.name << " forwards to bad id " << c);
      // Forwarding passes the continuation explicitly: the forwarder needs
      // its caller's info to hand over, and the target receives a
      // continuation it may manipulate — both ends require the CP interface.
      m.needs_continuation = true;
      methods[c].needs_continuation = true;
    }
  }
  // A method that can take its continuation can defer its reply arbitrarily,
  // so its callers must treat the call as blocking. Seed this before the
  // fixpoint so it propagates up the call graph.
  for (auto& m : methods) {
    if (m.needs_continuation) m.may_block = true;
  }

  // Least fixpoint; the graph is small (a program's method count), so simple
  // iteration to convergence is fine and obviously correct.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& m : methods) {
      if (!m.may_block) {
        for (MethodId c : m.callees) {
          if (methods[c].may_block) {
            m.may_block = true;
            changed = true;
            break;
          }
        }
      }
      // (needs_continuation is not transitive over plain calls: a method that
      // merely *calls* a CP method builds a fresh CallerInfo at the call
      // site; only forwarding edges — handled above — propagate the need.)
    }
  }

  for (auto& m : methods) {
    // Forwarding a continuation into a callee only makes sense if the chain
    // can actually consume it somewhere; a forward into a subgraph that never
    // uses continuations is treated as a plain call (matches the compiler,
    // which would never emit the CP convention there).
    if (m.needs_continuation) {
      m.schema = Schema::ContinuationPassing;
    } else if (m.may_block) {
      m.schema = Schema::MayBlock;
    } else {
      m.schema = Schema::NonBlocking;
    }
    // Implicit locking releases at activation completion, which for a CP
    // method may be delegated through its continuation — undecidable at the
    // call site. The compiler would reject such a class; so do we.
    CONCERT_CHECK(!(m.locks_self && m.schema == Schema::ContinuationPassing),
                  m.name << ": implicit locking is not supported on CP methods");
    CONCERT_CHECK(m.multi_return >= 1 && m.multi_return <= 8,
                  m.name << ": multi_return out of range");
    CONCERT_CHECK(!(m.multi_return > 1 && m.schema == Schema::ContinuationPassing),
                  m.name << ": multiple return values are not supported on CP methods");
  }
}

}  // namespace concert
