// CallerInfo — the descriptor threaded through Continuation-Passing calls
// (the paper's `caller_info` parameter, Sec. 3.2.3).
//
// It carries exactly what the paper's encoding carries: whether the caller's
// context has already been created, enough size information to create it
// lazily if not (we name the caller's method; the registry knows its frame
// size), where the return-value future lives within that context, and whether
// the continuation has been forwarded. The paper recovers the continuation by
// pointer arithmetic on `return_val_ptr`; portable C++ forbids that, so we
// carry an explicit ContextRef — same information, same protocol.
#pragma once

#include "core/continuation.hpp"
#include "core/ids.hpp"

namespace concert {

struct CallerInfo {
  bool context_exists = false;  ///< Caller's heap context already materialized?
  bool forwarded = false;       ///< Continuation already crossed a forwarding hop?
  MethodId caller_method = kInvalidMethod;  ///< Size info for lazy context creation.
  SlotId return_slot = 0;       ///< Slot of the return future in the caller's context.
  ContextRef context;           ///< Valid iff context_exists.

  /// For Non-blocking / May-block callees, which don't take caller info.
  static constexpr CallerInfo none() { return CallerInfo{}; }
};

}  // namespace concert
