// The compiler stand-in: global flow analysis selecting invocation schemas.
//
// The Concert compiler "performs a global flow analysis which conservatively
// determines the blocking and continuation requirements of methods and uses
// that information to select the appropriate schema" (Sec. 3.2). We implement
// the same analysis over the declared call graph:
//
//   may_block(m)  = m.blocks_locally  OR  any callee may_block
//   needs_cont(m) = m.uses_continuation OR m forwards its continuation
//                   (both ends of a forwarding edge require the CP interface)
//
// computed as a least fixpoint (the call graph may contain recursion and
// mutual recursion), then:
//
//   schema(m) = CP  if needs_cont(m)
//             = MB  if may_block(m)
//             = NB  otherwise
//
// concert-analyze adds a *call-site-sensitive* refinement on top of the
// method-level classification: site_may_block(m) asks whether an invocation
// of m arriving through a declared plain-call edge — where the caller builds
// the convention at the call site, as opposed to the exported interface a
// wrapper or forwarded continuation arrives through — can fail to complete on
// the caller's stack. The two fixpoints differ in exactly one seed:
// may_block includes needs_continuation (a CP method *as an interface* can
// defer its reply arbitrarily), while site_may_block only includes the
// method's *own* continuation behaviour (uses_continuation / forwards_to).
// A method that is CP purely because some other caller forwards into it
// still runs to completion when plainly called, so the edge can bind the
// cheap NB convention — recorded per call edge as
// MethodInfo::nb_site_callees and consumed by the dispatch tables at seal().
#pragma once

#include <vector>

#include "core/registry.hpp"

namespace concert {

/// The analysis result before it is committed into MethodInfo: one
/// may-block / needs-continuation / site-may-block bit per method.
struct FlowFacts {
  std::vector<std::uint8_t> may_block;
  std::vector<std::uint8_t> needs_continuation;
  /// Can an invocation arriving through a declared plain-call edge fail to
  /// complete on the caller's stack? Excludes inherited forward-target
  /// CP-ness (the whole point of the refinement) but keeps everything the
  /// method does itself: blocking, continuation use, forwarding, locking.
  std::vector<std::uint8_t> site_may_block;
};

/// Pure recomputation of the flow analysis from the declared facts. Does not
/// mutate `methods` and never panics: out-of-range call edges are simply
/// ignored (verify::lint_methods reports them as dangling-edge diagnostics;
/// analyze_schemas rejects them up front). This is the single implementation
/// of the fixpoint — the linter cross-checks a registry's committed schemas
/// against exactly the algorithm that produced them.
FlowFacts compute_flow_facts(const std::vector<MethodInfo>& methods);

/// The schema implied by a method's computed flow facts (paper Sec. 3.2):
/// CP if it needs its continuation, MB if it may block, NB otherwise.
Schema schema_from_facts(bool may_block, bool needs_continuation);

/// Runs the analysis in place, filling MethodInfo::{may_block,
/// needs_continuation, schema, site_nonblocking, nb_site_callees} for every
/// method.
void analyze_schemas(std::vector<MethodInfo>& methods);

}  // namespace concert
