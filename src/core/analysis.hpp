// The compiler stand-in: global flow analysis selecting invocation schemas.
//
// The Concert compiler "performs a global flow analysis which conservatively
// determines the blocking and continuation requirements of methods and uses
// that information to select the appropriate schema" (Sec. 3.2). We implement
// the same analysis over the declared call graph:
//
//   may_block(m)  = m.blocks_locally  OR  any callee may_block
//   needs_cont(m) = m.uses_continuation OR m forwards its continuation
//                   (both ends of a forwarding edge require the CP interface)
//
// computed as a least fixpoint (the call graph may contain recursion and
// mutual recursion), then:
//
//   schema(m) = CP  if needs_cont(m)
//             = MB  if may_block(m)
//             = NB  otherwise
#pragma once

#include <vector>

#include "core/registry.hpp"

namespace concert {

/// The analysis result before it is committed into MethodInfo: one
/// may-block / needs-continuation bit per method.
struct FlowFacts {
  std::vector<std::uint8_t> may_block;
  std::vector<std::uint8_t> needs_continuation;
};

/// Pure recomputation of the flow analysis from the declared facts. Does not
/// mutate `methods` and never panics: out-of-range call edges are simply
/// ignored (verify::lint_methods reports them as dangling-edge diagnostics;
/// analyze_schemas rejects them up front). This is the single implementation
/// of the fixpoint — the linter cross-checks a registry's committed schemas
/// against exactly the algorithm that produced them.
FlowFacts compute_flow_facts(const std::vector<MethodInfo>& methods);

/// The schema implied by a method's computed flow facts (paper Sec. 3.2):
/// CP if it needs its continuation, MB if it may block, NB otherwise.
Schema schema_from_facts(bool may_block, bool needs_continuation);

/// Runs the analysis in place, filling MethodInfo::{may_block,
/// needs_continuation, schema} for every method.
void analyze_schemas(std::vector<MethodInfo>& methods);

}  // namespace concert
