// The compiler stand-in: global flow analysis selecting invocation schemas.
//
// The Concert compiler "performs a global flow analysis which conservatively
// determines the blocking and continuation requirements of methods and uses
// that information to select the appropriate schema" (Sec. 3.2). We implement
// the same analysis over the declared call graph:
//
//   may_block(m)  = m.blocks_locally  OR  any callee may_block
//   needs_cont(m) = m.uses_continuation OR m forwards its continuation
//                   (both ends of a forwarding edge require the CP interface)
//
// computed as a least fixpoint (the call graph may contain recursion and
// mutual recursion), then:
//
//   schema(m) = CP  if needs_cont(m)
//             = MB  if may_block(m)
//             = NB  otherwise
#pragma once

#include <vector>

#include "core/registry.hpp"

namespace concert {

/// Runs the analysis in place, filling MethodInfo::{may_block,
/// needs_continuation, schema} for every method.
void analyze_schemas(std::vector<MethodInfo>& methods);

}  // namespace concert
