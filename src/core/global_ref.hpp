// Location-independent object references ("global name space").
//
// In the paper's programming model, object references hide placement: the
// runtime performs name translation and locality checks on every invocation.
// A GlobalRef names an object as (home node, index in that node's
// ObjectSpace). Whether the object is local is a runtime question — exactly
// the check the hybrid model uses to decide between the stack fast path and a
// remote parallel invocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/ids.hpp"

namespace concert {

/// A global object name: (home node, per-node object index).
struct GlobalRef {
  NodeId node = kInvalidNode;
  std::uint32_t index = 0;

  constexpr bool valid() const { return node != kInvalidNode; }

  friend constexpr bool operator==(const GlobalRef& a, const GlobalRef& b) {
    return a.node == b.node && a.index == b.index;
  }
  friend constexpr bool operator!=(const GlobalRef& a, const GlobalRef& b) { return !(a == b); }

  /// Packs into one word (used in messages and Value).
  constexpr std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(node) << 32) | index;
  }
  static constexpr GlobalRef unpack(std::uint64_t w) {
    return GlobalRef{static_cast<NodeId>(w >> 32), static_cast<std::uint32_t>(w)};
  }
};

inline constexpr GlobalRef kNoObject{};

}  // namespace concert

template <>
struct std::hash<concert::GlobalRef> {
  std::size_t operator()(const concert::GlobalRef& r) const noexcept {
    return std::hash<std::uint64_t>{}(r.pack() * 0x9e3779b97f4a7c15ull);
  }
};
