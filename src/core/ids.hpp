// Fundamental identifier types shared across the runtime.
#pragma once

#include <cstdint>

namespace concert {

/// Index of a node (processor) in the multicomputer. Dense, starting at 0.
using NodeId = std::uint32_t;

/// Index of a registered method in the MethodRegistry.
using MethodId = std::uint32_t;

/// Index of a heap context within its home node's ContextArena.
using ContextId = std::uint32_t;

/// Slot index inside a context (futures and saved locals share the slot array,
/// mirroring the paper's contexts where futures live *inside* the activation
/// record rather than being separately allocated).
using SlotId = std::uint16_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr MethodId kInvalidMethod = 0xffffffffu;
inline constexpr ContextId kInvalidContext = 0xffffffffu;

}  // namespace concert
