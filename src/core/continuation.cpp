#include "core/continuation.hpp"

#include <ostream>

namespace concert {

std::ostream& operator<<(std::ostream& os, const ContextRef& r) {
  if (!r.valid()) return os << "ctx(invalid)";
  return os << "ctx(n" << r.node << "#" << r.id << "g" << r.gen << ")";
}

std::ostream& operator<<(std::ostream& os, const Continuation& c) {
  if (!c.valid()) return os << "cont(none)";
  os << "cont(" << c.target << "[" << c.slot << "]";
  if (c.forwarded) os << ",fwd";
  return os << ")";
}

}  // namespace concert
