// Invocation schemas — the paper's Table 1.
//
// Every method has a parallel (heap-context) version plus one sequential
// (stack) version whose calling convention is one of three flavors of
// increasing generality. The compiler stand-in (core/analysis.hpp) picks the
// flavor; the MethodRegistry records it; call sites and wrappers must use the
// matching convention.
#pragma once

#include <cstdint>

namespace concert {

/// Sequential calling-convention flavor for a method's stack version.
enum class Schema : std::uint8_t {
  /// Provably never blocks (nor do any transitive callees): a plain C call;
  /// the future value is conveyed by the function return value.
  NonBlocking = 0,
  /// May block but never needs an explicit continuation: runs optimistically
  /// on the stack; on blockage the callee lazily allocates its own context
  /// and returns it so the caller can install the return linkage (Fig. 6).
  MayBlock = 1,
  /// May additionally require its continuation (to store or forward it):
  /// the continuation and the caller context holding its future are both
  /// created lazily, driven by CallerInfo (Fig. 7).
  ContinuationPassing = 2,
};

inline const char* schema_name(Schema s) {
  switch (s) {
    case Schema::NonBlocking: return "NB";
    case Schema::MayBlock: return "MB";
    case Schema::ContinuationPassing: return "CP";
  }
  return "?";
}

/// How a program is executed — the paper's evaluation columns.
enum class ExecMode : std::uint8_t {
  /// Full hybrid model, all three stack schemas available ("3 interfaces").
  Hybrid3 = 0,
  /// Hybrid, but only the most general continuation-passing stack schema is
  /// used for every method ("1 interface").
  Hybrid1 = 1,
  /// Every invocation uses the heap-based parallel version.
  ParallelOnly = 2,
  /// Hybrid with the parallelization overheads (name translation, locality
  /// and lock checks) compiled away; the paper's "Seq-opt" column. Only
  /// meaningful for single-node runs.
  SeqOpt = 3,
};

inline const char* exec_mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::Hybrid3: return "Hybrid (3 interfaces)";
    case ExecMode::Hybrid1: return "Hybrid (1 interface)";
    case ExecMode::ParallelOnly: return "Parallel-only";
    case ExecMode::SeqOpt: return "Seq-opt";
  }
  return "?";
}

/// What a context does after its first fallback (Sec. 4.1 discusses the
/// tradeoff; the paper recommends reverting to the parallel version).
enum class FallbackPolicy : std::uint8_t {
  /// After the first fallback the activation stays in its parallel version.
  RevertToParallel = 0,
  /// Keep re-attempting sequential execution after every suspension
  /// (the ablation A1 baseline; pays repeated fallback costs).
  AlwaysRetrySequential = 1,
};

}  // namespace concert
