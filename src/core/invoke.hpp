// Call-site machinery: speculative stack execution with lazy fallback.
//
// This module is what the Concert compiler would emit at every method call
// site. Application "generated code" uses two helpers:
//
//   * Frame     — the caller side inside a *sequential* (stack) version.
//                 Frame::call attempts a sub-invocation on the stack; if the
//                 callee completes the value is immediately available, and if
//                 not, Frame::fallback performs the paper's lazy unwinding:
//                 materialize this activation's heap context, save live state,
//                 set the resume point, install linkage, and produce the value
//                 to return up the stack (per this method's own schema).
//
//   * ParFrame  — the caller side inside a *parallel* (heap) version.
//                 ParFrame::spawn issues child invocations whose results land
//                 in this context's future slots (children may still complete
//                 inline on the stack — the hybrid fast path works from
//                 parallel callers too); ParFrame::touch is the single
//                 counter-based multi-future touch of Fig. 4.
//
// The protocol invariants (what non-null seq returns mean, who creates which
// context) are documented on SeqFn in core/registry.hpp.
#pragma once

#include <initializer_list>
#include <utility>

#include "core/caller_info.hpp"
#include "core/context.hpp"
#include "core/registry.hpp"
#include "machine/node.hpp"

namespace concert {

/// (continuation, context-holding-its-future) pair produced when a CP
/// method's continuation must actually be materialized (fallback or off-node
/// forwarding). Implements Sec. 3.2.3's three cases: forwarded (extract from
/// the fixed location), context-exists (make a continuation to its return
/// slot), neither (lazily create the caller's context first).
struct MaterializedCont {
  Continuation cont;
  Context* holder;  ///< The context containing the continuation's future.
};
MaterializedCont materialize_continuation(Node& nd, const CallerInfo& ci);

class Frame {
 public:
  /// `my_ci` is the CallerInfo this activation itself received (only
  /// meaningful when this method's schema is ContinuationPassing).
  Frame(Node& nd, MethodId my_method, GlobalRef self, const CallerInfo& my_ci,
        const Value* args, std::size_t nargs);

  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  /// Hybrid sub-invocation. Returns true when the callee completed and *out
  /// holds the value (for a multi_return method, out[0..K) — pass an array).
  /// Returns false when the callee went parallel: the value(s) will
  /// eventually arrive in `slot` (.. slot+K-1) of this activation's context
  /// (already expected); the caller must save state with fallback() and
  /// return its result up the stack.
  bool call(MethodId callee, GlobalRef target, std::initializer_list<Value> args, SlotId slot,
            Value* out) {
    return call(callee, target, args.begin(), args.size(), slot, out);
  }
  bool call(MethodId callee, GlobalRef target, const Value* args, std::size_t nargs, SlotId slot,
            Value* out);

  /// Tail-forwards this activation's continuation responsibility to `callee`
  /// (which must have the CP schema): local targets execute on this very
  /// stack with (ret, ci) passed through unchanged; remote targets force
  /// materialization of the continuation, which then travels with the
  /// message. The caller must `return` the result directly.
  Context* forward(MethodId callee, GlobalRef target, std::initializer_list<Value> args,
                   Value* ret) {
    return forward(callee, target, args.begin(), args.size(), ret);
  }
  Context* forward(MethodId callee, GlobalRef target, const Value* args, std::size_t nargs,
                   Value* ret);

  /// Performs this activation's half of the unwinding after a failed call():
  /// records the resume point and live state in the (already materialized)
  /// context and returns the value this seq function must return, per this
  /// method's own schema (MB: own context; CP: the parent context, with this
  /// context's reply continuation installed).
  Context* fallback(std::uint32_t resume_pc,
                    std::initializer_list<std::pair<SlotId, Value>> saved);

  /// Immediate transfer to the parallel version without waiting on anything:
  /// materializes the context, records the resume point and saved state, and
  /// *enqueues* it (it is runnable right away). Used by long-running driver
  /// methods whose sequential versions would block at entry (e.g. iteration
  /// drivers that immediately hit a barrier). Returns the value this seq
  /// function must return up the stack, like fallback().
  Context* yield_to_parallel(std::uint32_t resume_pc,
                             std::initializer_list<std::pair<SlotId, Value>> saved);

  /// The materialized context, if any (tests).
  Context* ctx() { return ctx_; }

 private:
  Context& materialize();
  /// Common "the callee must run in parallel" path: expect `slot` (..+K-1),
  /// then send a message (remote) or enqueue a local heap context.
  void go_parallel(MethodId callee, GlobalRef target, const Value* args, std::size_t nargs,
                   SlotId slot, std::size_t nret, bool remote);
  /// This activation's own effective schema, looked up once per frame and
  /// cached (fallback() and yield_to_parallel() both consult it).
  Schema my_schema() {
    if (!schema_cached_) {
      my_schema_ = nd_.dispatch(method_).schema;
      schema_cached_ = true;
    }
    return my_schema_;
  }

  Node& nd_;
  MethodId method_;
  GlobalRef self_;
  const CallerInfo& ci_;
  const Value* args_;
  std::size_t nargs_;
  Context* ctx_ = nullptr;
  bool have_guard_ = false;  ///< A CP callee guarded our context; fallback() releases it.
  Schema my_schema_ = Schema::NonBlocking;  ///< Valid when schema_cached_.
  bool schema_cached_ = false;
};

class ParFrame {
 public:
  ParFrame(Node& nd, Context& ctx) : nd_(nd), ctx_(ctx) {}

  ParFrame(const ParFrame&) = delete;
  ParFrame& operator=(const ParFrame&) = delete;

  /// Issues a child invocation whose result lands in `slot`. In hybrid modes
  /// the child may complete inline on the stack (slot filled immediately);
  /// otherwise the slot is expected and will be filled by a reply.
  void spawn(MethodId callee, GlobalRef target, std::initializer_list<Value> args, SlotId slot) {
    spawn(callee, target, args.begin(), args.size(), slot);
  }
  void spawn(MethodId callee, GlobalRef target, const Value* args, std::size_t nargs,
             SlotId slot);

  /// Counter-based touch of everything spawned so far. True: all values
  /// present, keep executing. False: the context suspended; the parallel
  /// version must return immediately and will be re-dispatched at
  /// `resume_pc` once the last outstanding future fills.
  bool touch(std::uint32_t resume_pc);

  /// Replies through the context's return continuation and frees the context.
  /// The parallel version must return immediately afterwards.
  void complete(const Value& v);
  /// Multi-value completion (methods declared with multi_return > 1).
  void complete_multi(const Value* vs, std::size_t n);

  /// Reads a filled slot.
  const Value& get(SlotId s) const { return ctx_.get(s); }
  /// Writes a slot as a saved local.
  void save(SlotId s, const Value& v) { ctx_.save(s, v); }

  Context& ctx() { return ctx_; }

 private:
  Node& nd_;
  Context& ctx_;
};

/// Local heap invocation: allocates the callee's context, marshals arguments,
/// installs the reply continuation, and enqueues it. The paper's ~130
/// instruction parallel invocation path. Returns the new context.
Context& heap_invoke_local(Node& nd, MethodId callee, GlobalRef target, const Value* args,
                           std::size_t nargs, Continuation reply_to);

/// Remote invocation: builds and sends an Invoke message.
void remote_invoke(Node& nd, MethodId callee, GlobalRef target, const Value* args,
                   std::size_t nargs, Continuation reply_to);

/// Charges the per-schema sequential call cost at a call site.
void charge_seq_call(Node& nd, Schema callee_schema);

/// Implicit locking (MethodDecl::locks_self): acquire the target object's
/// lock before running method `m`. Returns whether a lock was taken. The
/// method id feeds the verify recorder's lock-held shadow (concert-analyze);
/// the runtime lock itself is keyed by the object alone.
bool acquire_implicit_lock(Node& nd, const MethodInfo& mi, MethodId m, GlobalRef target);
bool acquire_implicit_lock(Node& nd, const DispatchEntry& de, MethodId m, GlobalRef target);
void release_implicit_lock(Node& nd, GlobalRef target);

}  // namespace concert
