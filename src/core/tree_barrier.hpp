// A combining-tree barrier: the scalable variant of the flat barrier in
// core/barrier.hpp, composed from the same first-class-continuation machinery
// plus *reactive* invocations (no continuation at all — Fig. 3's reactive
// structure).
//
// One TreeBarrierNode object lives on every machine node, arranged in a
// `fanout`-ary tree. An arrival stores its continuation at the local tree
// node; when a tree node has collected its local arrivals plus its children's
// completion notifications, it notifies its parent reactively. When the root
// completes, release notifications flow back down and every stored
// continuation is answered with the generation. The hot root therefore
// receives `fanout` messages per phase instead of P-1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/continuation.hpp"
#include "core/registry.hpp"
#include "machine/machine.hpp"

namespace concert {

struct TreeBarrierNode {
  GlobalRef parent;                 ///< invalid at the root.
  std::vector<GlobalRef> children;  ///< child tree-node objects.
  int local_expected = 0;           ///< arrivals expected at this node per phase.
  int pending = 0;                  ///< local arrivals + child notifications outstanding.
  std::int64_t generation = 0;
  std::vector<Continuation> waiters;
};

struct TreeBarrierMethods {
  MethodId arrive = kInvalidMethod;   ///< CP: stores the arrival's continuation.
  MethodId notify = kInvalidMethod;   ///< NB, reactive: child subtree complete.
  MethodId release = kInvalidMethod;  ///< NB, reactive: answer waiters, recurse down.
};

/// Registers the three methods. Once per registry.
TreeBarrierMethods register_tree_barrier_methods(MethodRegistry& reg);

/// Builds a fanout-ary tree with one tree node per machine node (node 0 is
/// the root), each expecting `arrivals_per_node` local arrivals per phase.
/// Returns the per-machine-node tree objects; arrivals go to the local one.
std::vector<GlobalRef> make_tree_barrier(Machine& machine, int arrivals_per_node, int fanout);

inline constexpr std::uint32_t kTreeBarrierType = 0x73EEu;

}  // namespace concert
