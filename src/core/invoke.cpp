#include "core/invoke.hpp"

#include <chrono>
#include <vector>

#include "core/wrapper.hpp"
#include "machine/machine.hpp"

namespace concert {

namespace {
// concert-insight site profiling: wall stamps are read only when the profiler
// is enabled and never enter the cost model.
inline std::uint64_t site_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}
}  // namespace

void charge_seq_call(Node& nd, Schema callee_schema) {
  const CostModel& c = nd.costs();
  switch (callee_schema) {
    case Schema::NonBlocking: nd.charge(c.c_call + c.nb_call_extra); break;
    case Schema::MayBlock: nd.charge(c.c_call + c.mb_call_extra); break;
    case Schema::ContinuationPassing: nd.charge(c.c_call + c.cp_call_extra); break;
  }
}

bool acquire_implicit_lock(Node& nd, const MethodInfo& mi, MethodId m, GlobalRef target) {
  if (!mi.locks_self || !target.valid()) return false;
  nd.objects().lock(target);
  nd.verifier.record_lock_acquire(m, target.pack());
  nd.charge(nd.costs().lock_check);
  return true;
}

bool acquire_implicit_lock(Node& nd, const DispatchEntry& de, MethodId m, GlobalRef target) {
  if (!de.locks_self || !target.valid()) return false;
  nd.objects().lock(target);
  nd.verifier.record_lock_acquire(m, target.pack());
  nd.charge(nd.costs().lock_check);
  return true;
}

void release_implicit_lock(Node& nd, GlobalRef target) {
  nd.objects().unlock(target);
  nd.verifier.record_lock_release(target.pack());
  nd.charge(nd.costs().lock_check);
}

MaterializedCont materialize_continuation(Node& nd, const CallerInfo& ci) {
  const CostModel& c = nd.costs();
  if (ci.forwarded) {
    // Case 1: the continuation was forwarded, so it already exists at the
    // fixed location of the (necessarily existing, local) holder context.
    CONCERT_CHECK(ci.context_exists, "forwarded CallerInfo without a context");
    Context& holder = nd.arena().resolve(ci.context);
    nd.charge(c.touch);
    Continuation k = holder.ret;
    k.forwarded = true;
    return {k, &holder};
  }
  Context* holder;
  if (ci.context_exists) {
    // Case 2: the caller's context exists but the continuation does not:
    // create one for a future at the return slot within that context.
    holder = &nd.arena().resolve(ci.context);
  } else {
    // Case 3: neither exists: lazily create the caller's context from the
    // size information in CallerInfo, then the continuation.
    CONCERT_CHECK(ci.caller_method != kInvalidMethod,
                  "cannot lazily create a context without caller size info");
    holder = &nd.alloc_context(ci.caller_method);
    holder->status = ContextStatus::Waiting;  // its owner will adopt + populate it
  }
  nd.charge(c.continuation_create);
  ++nd.stats.continuations_created;
  // The continuation's future becomes live now (a reply may race in through
  // it synchronously); the guard keeps the context unrunnable until its owner
  // has adopted it and saved state (released in Frame::fallback /
  // ParFrame::spawn after the call returns up the stack).
  holder->expect(ci.return_slot);
  nd.charge(c.future_expect);
  holder->add_guard();
  return {Continuation{holder->ref(), ci.return_slot, false}, holder};
}

Context& heap_invoke_local(Node& nd, MethodId callee, GlobalRef target, const Value* args,
                           std::size_t nargs, Continuation reply_to) {
  const CostModel& c = nd.costs();
  ++nd.stats.heap_invokes;
  Context& ctx = nd.alloc_context(callee);
  ctx.self = target;
  ctx.args.assign(args, args + nargs);
  ctx.ret = reply_to;
  nd.charge(c.heap_invoke_fixed + c.save_word * ctx.args.size() + c.linkage_install);
  ctx.status = ContextStatus::Waiting;  // enqueue() flips it to Ready
  nd.enqueue(ctx);
  return ctx;
}

void remote_invoke(Node& nd, MethodId callee, GlobalRef target, const Value* args,
                   std::size_t nargs, Continuation reply_to) {
  std::vector<Value> payload = nd.acquire_payload(nargs);
  payload.assign(args, args + nargs);
  nd.send(Message::invoke(nd.id(), target.node, callee, target, std::move(payload), reply_to));
}

// ---------------------------------------------------------------------------
// Frame (caller side of a sequential version)
// ---------------------------------------------------------------------------

Frame::Frame(Node& nd, MethodId my_method, GlobalRef self, const CallerInfo& my_ci,
             const Value* args, std::size_t nargs)
    : nd_(nd), method_(my_method), self_(self), ci_(my_ci), args_(args), nargs_(nargs) {}

Context& Frame::materialize() {
  if (ctx_ != nullptr) return *ctx_;
  nd_.verifier.record_block(method_);
  ctx_ = &nd_.alloc_context(method_);
  ctx_->self = self_;
  ctx_->args.assign(args_, args_ + nargs_);
  nd_.charge(nd_.costs().save_word * nargs_);
  ctx_->status = ContextStatus::Waiting;
  ctx_->reverted = true;  // stays in the parallel version from here on
  ++nd_.stats.fallbacks;
  return *ctx_;
}

void Frame::go_parallel(MethodId callee, GlobalRef target, const Value* args,
                        std::size_t nargs, SlotId slot, std::size_t nret, bool remote) {
  Context& me = materialize();
  for (std::size_t i = 0; i < nret; ++i) me.expect(static_cast<SlotId>(slot + i));
  nd_.charge(nd_.costs().future_expect);
  const Continuation k{me.ref(), slot, false};
  // A locally-forwarded (migrated) target resolves to its new home first.
  target = resolve_forwarding(nd_, target);
  remote = target.valid() && target.node != nd_.id();
  if (remote) {
    remote_invoke(nd_, callee, target, args, nargs, k);
  } else {
    heap_invoke_local(nd_, callee, target, args, nargs, k);
  }
}

bool Frame::call(MethodId callee, GlobalRef target, const Value* args, std::size_t nargs,
                 SlotId slot, Value* out) {
  nd_.verifier.record_call(method_, callee);
  const DispatchEntry& de = nd_.dispatch(callee);
  Schema schema = de.schema;
  // Call-site specialization (concert-analyze): this specific edge was proved
  // site-NB by the registry's per-edge refinement, so the site binds the NB
  // convention even though the callee's global interface is more general —
  // no CallerInfo setup, NB call cost, no fallback linkage. The locality /
  // lock divert below is unaffected (it precedes the convention in both the
  // specialized and general code paths).
  if (schema != Schema::NonBlocking && nd_.site_specialized(method_, callee)) {
    schema = Schema::NonBlocking;
    ++nd_.stats.spec_stack_calls;
  }
  charge_seq_call(nd_, schema);

  const bool is_remote = target.valid() && target.node != nd_.id();
  if (is_remote) {
    ++nd_.stats.remote_invokes;
  } else {
    ++nd_.stats.local_invokes;
  }
  SiteRecord* site = nullptr;
  if (nd_.sites().enabled()) {
    site = &nd_.sites().at(method_, callee);
    ++site->invokes;
    if (is_remote) ++site->remote;
  }

  const bool runnable_here = nd_.local_and_unlocked(target);
  const bool injected =
      runnable_here && nd_.injector().enabled() && nd_.injector().should_block(callee);

  if (!runnable_here || injected) {
    if (site != nullptr) ++site->diverts;
    go_parallel(callee, target, args, nargs, slot, de.multi_return, is_remote);
    return false;
  }

  // Speculative stack execution.
  ++nd_.stats.stack_calls;
  std::uint64_t site_t0 = 0;
  if (site != nullptr) {
    ++site->attempts;
    site_t0 = site_now_ns();
  }
  CONCERT_CHECK(de.variadic ? nargs >= de.arg_count : nargs == de.arg_count,
                "call of " << nd_.registry().info(callee).name << " with " << nargs
                           << " args, wants " << de.arg_count);
  CallerInfo ci;
  if (schema == Schema::ContinuationPassing) {
    ci.context_exists = ctx_ != nullptr;
    ci.forwarded = false;
    ci.caller_method = method_;
    ci.return_slot = slot;
    if (ctx_ != nullptr) ci.context = ctx_->ref();
  }
  const bool locked_here = acquire_implicit_lock(nd_, de, callee, target);
  Context* fbk = de.seq(nd_, out, ci, target, args, nargs);
  if (fbk == nullptr) {
    if (locked_here) release_implicit_lock(nd_, target);
    ++nd_.stats.stack_completions;
    if (site != nullptr) {
      ++site->nb_hits;
      site->stack_ns.record(site_now_ns() - site_t0);
    }
    return true;
  }
  if (site != nullptr) {
    ++site->fallbacks;
    site->fallback_ns.record(site_now_ns() - site_t0);
  }
  // The callee fell back: its (MB) context inherits the lock until its
  // parallel version completes. (locks_self is rejected on CP methods.)
  if (locked_here) fbk->holds_lock = true;

  // Establish the linkage per the callee's schema.
  switch (schema) {
    case Schema::NonBlocking:
      CONCERT_UNREACHABLE("non-blocking callee " + nd_.registry().info(callee).name +
                          " returned a fallback context");
    case Schema::MayBlock: {
      // Fig. 6: fbk is the callee's freshly created context; insert the
      // continuation for its return value(s).
      Context& me = materialize();
      for (std::size_t i = 0; i < de.multi_return; ++i) {
        me.expect(static_cast<SlotId>(slot + i));
      }
      nd_.charge(nd_.costs().future_expect + nd_.costs().linkage_install);
      fbk->ret = Continuation{me.ref(), slot, false};
      break;
    }
    case Schema::ContinuationPassing: {
      // Fig. 7: fbk is *our* context (created lazily by the callee if we had
      // none); the callee already owns its reply continuation, and the return
      // slot was expected (plus guarded) at materialization time.
      if (ctx_ == nullptr) {
        CONCERT_CHECK(fbk->method == method_,
                      "CP callee materialized a context for method " << fbk->method
                                                                     << ", expected " << method_);
        nd_.verifier.record_block(method_);
        ctx_ = fbk;
        ctx_->self = self_;
        ctx_->args.assign(args_, args_ + nargs_);
        nd_.charge(nd_.costs().save_word * nargs_);
        ctx_->reverted = true;
        ++nd_.stats.fallbacks;
      } else {
        CONCERT_CHECK(fbk == ctx_, "CP callee returned a foreign context");
      }
      have_guard_ = true;  // released once fallback() finishes the unwinding
      break;
    }
  }
  return false;
}

Context* Frame::forward(MethodId callee, GlobalRef target, const Value* args,
                        std::size_t nargs, Value* ret) {
  nd_.verifier.record_call(method_, callee);
  nd_.verifier.record_forward(method_, callee);
  nd_.verifier.record_cont_use(method_);
  const DispatchEntry& de = nd_.dispatch(callee);
  const Schema schema = de.schema;
  CONCERT_CHECK(schema == Schema::ContinuationPassing,
                "forwarding into " << nd_.registry().info(callee).name << " which is not CP");
  charge_seq_call(nd_, schema);

  const bool is_remote = target.valid() && target.node != nd_.id();
  const bool runnable_here = nd_.local_and_unlocked(target);
  const bool injected =
      runnable_here && nd_.injector().enabled() && nd_.injector().should_block(callee);

  SiteRecord* site = nullptr;
  if (nd_.sites().enabled()) {
    site = &nd_.sites().at(method_, callee);
    ++site->invokes;
    if (is_remote) ++site->remote;
  }

  if (runnable_here && !injected) {
    ++nd_.stats.local_invokes;
    ++nd_.stats.stack_calls;
    std::uint64_t site_t0 = 0;
    if (site != nullptr) {
      ++site->attempts;
      site_t0 = site_now_ns();
    }
    // Local forwarding stays on the stack: pass (ret, ci) through unchanged;
    // whatever the callee returns is exactly what we must return.
    Context* fbk = de.seq(nd_, ret, ci_, target, args, nargs);
    if (fbk == nullptr) ++nd_.stats.stack_completions;
    if (site != nullptr) {
      if (fbk == nullptr) {
        ++site->nb_hits;
        site->stack_ns.record(site_now_ns() - site_t0);
      } else {
        ++site->fallbacks;
        site->fallback_ns.record(site_now_ns() - site_t0);
      }
    }
    return fbk;
  }

  // Off-node (or diverted) forwarding: the continuation must be materialized
  // and travels with the invocation. We complete right away; the reply
  // obligation now rests with the callee.
  if (site != nullptr) ++site->diverts;
  ++nd_.stats.continuations_forwarded;
  MaterializedCont mk = materialize_continuation(nd_, ci_);
  mk.cont.forwarded = true;
  if (is_remote) {
    ++nd_.stats.remote_invokes;
    remote_invoke(nd_, callee, target, args, nargs, mk.cont);
  } else {
    ++nd_.stats.local_invokes;
    heap_invoke_local(nd_, callee, target, args, nargs, mk.cont);
  }
  return mk.holder;
}

Context* Frame::fallback(std::uint32_t resume_pc,
                         std::initializer_list<std::pair<SlotId, Value>> saved) {
  CONCERT_CHECK(ctx_ != nullptr, "fallback() before any failed call()");
  Context& me = *ctx_;
  me.pc = resume_pc;
  for (const auto& [slot, v] : saved) {
    me.save(slot, v);
    nd_.charge(nd_.costs().save_word);
  }
  nd_.suspend(me);

  Context* up = nullptr;
  switch (my_schema()) {
    case Schema::NonBlocking:
      CONCERT_UNREACHABLE("non-blocking method attempted fallback");
    case Schema::MayBlock:
      // Our caller will install our return continuation into `me`.
      up = &me;
      break;
    case Schema::ContinuationPassing: {
      // We must arrange our own reply continuation from our CallerInfo and
      // hand the continuation's holder context back up the stack.
      nd_.verifier.record_cont_use(method_);
      MaterializedCont mk = materialize_continuation(nd_, ci_);
      me.ret = mk.cont;
      nd_.charge(nd_.costs().linkage_install);
      up = mk.holder;
      break;
    }
  }
  // Unwinding of this activation is complete: drop the adoption guard (if a
  // CP callee materialized our context); a synchronously delivered value can
  // now legitimately make us runnable.
  if (have_guard_) {
    have_guard_ = false;
    nd_.release_guard(me);
  }
  return up;
}

Context* Frame::yield_to_parallel(std::uint32_t resume_pc,
                                  std::initializer_list<std::pair<SlotId, Value>> saved) {
  Context& me = materialize();
  me.pc = resume_pc;
  for (const auto& [slot, v] : saved) {
    me.save(slot, v);
    nd_.charge(nd_.costs().save_word);
  }
  nd_.enqueue(me);  // runnable immediately — nothing to wait for

  switch (my_schema()) {
    case Schema::NonBlocking:
      CONCERT_UNREACHABLE("non-blocking method attempted yield_to_parallel");
    case Schema::MayBlock:
      return &me;
    case Schema::ContinuationPassing: {
      nd_.verifier.record_cont_use(method_);
      MaterializedCont mk = materialize_continuation(nd_, ci_);
      me.ret = mk.cont;
      nd_.charge(nd_.costs().linkage_install);
      if (have_guard_) {
        have_guard_ = false;
        nd_.release_guard(me);
      }
      return mk.holder;
    }
  }
  CONCERT_UNREACHABLE("bad schema");
}

// ---------------------------------------------------------------------------
// ParFrame (caller side of a parallel version)
// ---------------------------------------------------------------------------

void ParFrame::spawn(MethodId callee, GlobalRef target, const Value* args, std::size_t nargs,
                     SlotId slot) {
  nd_.verifier.record_call(ctx_.method, callee);
  const DispatchEntry& de = nd_.dispatch(callee);
  const bool is_remote = target.valid() && target.node != nd_.id();
  if (is_remote) {
    ++nd_.stats.remote_invokes;
  } else {
    ++nd_.stats.local_invokes;
  }
  SiteRecord* site = nullptr;
  if (nd_.sites().enabled()) {
    site = &nd_.sites().at(ctx_.method, callee);
    ++site->invokes;
    if (is_remote) ++site->remote;
  }

  if (nd_.mode() == ExecMode::ParallelOnly) {
    if (site != nullptr) ++site->diverts;
    // The parallel-only runtime still performs name translation + locality
    // checks to route the invocation.
    nd_.charge(nd_.costs().name_translation + nd_.costs().locality_check);
    const std::size_t nret_par = de.multi_return;
    for (std::size_t i = 0; i < nret_par; ++i) ctx_.expect(static_cast<SlotId>(slot + i));
    nd_.charge(nd_.costs().future_expect);
    const Continuation k{ctx_.ref(), slot, false};
    target = resolve_forwarding(nd_, target);
    if (target.valid() && target.node != nd_.id()) {
      remote_invoke(nd_, callee, target, args, nargs, k);
    } else {
      heap_invoke_local(nd_, callee, target, args, nargs, k);
    }
    return;
  }

  Schema schema = de.schema;
  // Edge specialization applies from parallel callers too: the declared edge
  // is the same one the site fixpoint proved NB-bindable.
  if (schema != Schema::NonBlocking && nd_.site_specialized(ctx_.method, callee)) {
    schema = Schema::NonBlocking;
    ++nd_.stats.spec_stack_calls;
  }
  charge_seq_call(nd_, schema);
  const bool runnable_here = nd_.local_and_unlocked(target);
  const bool injected =
      runnable_here && nd_.injector().enabled() && nd_.injector().should_block(callee);
  const std::size_t nret = de.multi_return;

  if (!runnable_here || injected) {
    if (site != nullptr) ++site->diverts;
    for (std::size_t i = 0; i < nret; ++i) ctx_.expect(static_cast<SlotId>(slot + i));
    nd_.charge(nd_.costs().future_expect);
    const Continuation k{ctx_.ref(), slot, false};
    target = resolve_forwarding(nd_, target);
    if (target.valid() && target.node != nd_.id()) {
      remote_invoke(nd_, callee, target, args, nargs, k);
    } else {
      heap_invoke_local(nd_, callee, target, args, nargs, k);
    }
    return;
  }

  // Hybrid fast path from a parallel caller: children still try the stack.
  ++nd_.stats.stack_calls;
  std::uint64_t site_t0 = 0;
  if (site != nullptr) {
    ++site->attempts;
    site_t0 = site_now_ns();
  }
  CONCERT_CHECK(nret <= 8, "multi_return too wide");
  CallerInfo ci;
  if (schema == Schema::ContinuationPassing) {
    ci.context_exists = true;
    ci.forwarded = false;
    ci.caller_method = ctx_.method;
    ci.return_slot = slot;
    ci.context = ctx_.ref();
  }
  const bool locked_here = acquire_implicit_lock(nd_, de, callee, target);
  Value out[8];
  Context* fbk = de.seq(nd_, out, ci, target, args, nargs);
  if (fbk == nullptr) {
    if (locked_here) release_implicit_lock(nd_, target);
    ++nd_.stats.stack_completions;
    if (site != nullptr) {
      ++site->nb_hits;
      site->stack_ns.record(site_now_ns() - site_t0);
    }
    for (std::size_t i = 0; i < nret; ++i) ctx_.save(static_cast<SlotId>(slot + i), out[i]);
    return;
  }
  if (site != nullptr) {
    ++site->fallbacks;
    site->fallback_ns.record(site_now_ns() - site_t0);
  }
  if (locked_here) fbk->holds_lock = true;
  // (The fallback itself is counted at the callee's materialization site.)
  switch (schema) {
    case Schema::NonBlocking:
      CONCERT_UNREACHABLE("non-blocking callee returned a fallback context");
    case Schema::MayBlock:
      for (std::size_t i = 0; i < nret; ++i) ctx_.expect(static_cast<SlotId>(slot + i));
      nd_.charge(nd_.costs().future_expect + nd_.costs().linkage_install);
      fbk->ret = Continuation{ctx_.ref(), slot, false};
      break;
    case Schema::ContinuationPassing:
      // The callee expected + guarded our return slot at materialization; we
      // are Running (fills cannot enqueue us), so the guard can drop at once.
      CONCERT_CHECK(fbk == &ctx_, "CP callee returned a foreign context to a parallel caller");
      nd_.release_guard(ctx_);
      break;
  }
}

bool ParFrame::touch(std::uint32_t resume_pc) {
  nd_.charge(nd_.costs().touch);
  if (!nd_.futures_in_context()) {
    // Ablation A2 (the StackThreads layout): futures allocated apart from
    // the context cost an extra indirection on every touch.
    nd_.charge(1);
  }
  if (ctx_.join == 0) return true;
  ctx_.pc = resume_pc;
  nd_.suspend(ctx_);
  return false;
}

void ParFrame::complete(const Value& v) {
  if (ctx_.holds_lock) {
    ctx_.holds_lock = false;
    release_implicit_lock(nd_, ctx_.self);
  }
  nd_.verifier.record_reply(ctx_.method, 1);
  nd_.reply_to(ctx_.ret, v);
  nd_.free_context(ctx_);
}

void ParFrame::complete_multi(const Value* vs, std::size_t n) {
  if (ctx_.holds_lock) {
    ctx_.holds_lock = false;
    release_implicit_lock(nd_, ctx_.self);
  }
  nd_.verifier.record_reply(ctx_.method, static_cast<std::uint8_t>(n));
  nd_.reply_to_multi(ctx_.ret, vs, n);
  nd_.free_context(ctx_);
}

}  // namespace concert
