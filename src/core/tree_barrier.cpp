#include "core/tree_barrier.hpp"

#include "core/invoke.hpp"
#include "core/wrapper.hpp"

namespace concert {

namespace {

MethodId g_arrive = kInvalidMethod;
MethodId g_notify = kInvalidMethod;
MethodId g_release = kInvalidMethod;

/// Reactive, no continuation: answer local waiters and recurse down the tree.
void do_release(Node& nd, TreeBarrierNode& b) {
  const Value v{b.generation};
  ++b.generation;
  b.pending = b.local_expected + static_cast<int>(b.children.size());
  std::vector<Continuation> waiters = std::move(b.waiters);
  b.waiters.clear();
  for (const Continuation& k : waiters) nd.reply_to(k, v);
  for (const GlobalRef& child : b.children) {
    invoke_with_continuation(nd, g_release, child, nullptr, 0, kNoContinuation);
  }
}

/// Local arrivals + child notifications both decrement `pending`.
void on_progress(Node& nd, GlobalRef self, TreeBarrierNode& b) {
  CONCERT_CHECK(b.pending > 0, "tree barrier over-arrived");
  if (--b.pending > 0) return;
  if (b.parent.valid()) {
    // Subtree complete: tell the parent, reactively (no reply wanted).
    invoke_with_continuation(nd, g_notify, b.parent, nullptr, 0, kNoContinuation);
  } else {
    do_release(nd, b);  // the root completes the phase
  }
  (void)self;
}

Context* arrive_seq(Node& nd, Value* ret, const CallerInfo& ci, GlobalRef self,
                    const Value* args, std::size_t nargs) {
  (void)ret;
  (void)args;
  (void)nargs;
  auto& b = nd.objects().get<TreeBarrierNode>(self);
  MaterializedCont mk = materialize_continuation(nd, ci);
  b.waiters.push_back(mk.cont);
  on_progress(nd, self, b);
  return mk.holder;
}
void arrive_par(Node& nd, Context& ctx) {
  auto& b = nd.objects().get<TreeBarrierNode>(ctx.self);
  const Continuation k = ctx.ret;
  const GlobalRef self = ctx.self;
  nd.free_context(ctx);
  b.waiters.push_back(k);
  on_progress(nd, self, b);
}

Context* notify_seq(Node& nd, Value* ret, const CallerInfo&, GlobalRef self, const Value*,
                    std::size_t) {
  auto& b = nd.objects().get<TreeBarrierNode>(self);
  on_progress(nd, self, b);
  *ret = Value::nil();  // reactive: nobody is listening
  return nullptr;
}
void notify_par(Node& nd, Context& ctx) {
  const GlobalRef self = ctx.self;
  ParFrame f(nd, ctx);
  f.complete(Value::nil());
  auto& b = nd.objects().get<TreeBarrierNode>(self);
  on_progress(nd, self, b);
}

Context* release_seq(Node& nd, Value* ret, const CallerInfo&, GlobalRef self, const Value*,
                     std::size_t) {
  auto& b = nd.objects().get<TreeBarrierNode>(self);
  do_release(nd, b);
  *ret = Value::nil();
  return nullptr;
}
void release_par(Node& nd, Context& ctx) {
  const GlobalRef self = ctx.self;
  ParFrame f(nd, ctx);
  f.complete(Value::nil());
  auto& b = nd.objects().get<TreeBarrierNode>(self);
  do_release(nd, b);
}

}  // namespace

TreeBarrierMethods register_tree_barrier_methods(MethodRegistry& reg) {
  TreeBarrierMethods m;
  MethodDecl d;
  d.name = "tree_barrier.arrive";
  d.seq = arrive_seq;
  d.par = arrive_par;
  d.uses_continuation = true;
  d.class_id = 1002;  // TreeBarrierNode (concert-race aliasing)
  d.reads = {"local_expected", "parent", "children"};
  d.writes = {"waiters", "pending", "generation"};
  m.arrive = g_arrive = reg.declare(d);

  d = MethodDecl{};
  d.name = "tree_barrier.notify";
  d.seq = notify_seq;
  d.par = notify_par;
  d.class_id = 1002;
  d.reads = {"parent", "children", "local_expected"};
  d.writes = {"waiters", "pending", "generation"};
  m.notify = g_notify = reg.declare(d);

  d = MethodDecl{};
  d.name = "tree_barrier.release";
  d.seq = release_seq;
  d.par = release_par;
  d.class_id = 1002;
  d.reads = {"children"};
  d.writes = {"waiters", "pending", "generation"};
  m.release = g_release = reg.declare(d);

  // The barrier IS the synchronization primitive, so its own state updates
  // are ordered by its protocol, not by an outer barrier: arrivals and child
  // notifications commute (each decrements pending; release fires on zero,
  // whichever lands last), and a release reaches a node only after the
  // parent joined every notify of the generation — so release is causally
  // ordered behind every arrive/notify it could conflict with, and two
  // releases to one node are a full generation apart.
  reg.add_commutes(m.arrive, m.arrive);
  reg.add_commutes(m.arrive, m.notify);
  reg.add_commutes(m.notify, m.notify);
  reg.add_commutes(m.release, m.arrive);
  reg.add_commutes(m.release, m.notify);
  reg.add_commutes(m.release, m.release);
  // Reply discipline (concert-progress): a banked arrival is discharged by
  // do_release, reachable from the last local arrive (pending hits zero at
  // the root), a child's notify bubbling up, or a release recursing down —
  // all on the same TreeBarrierNode class, so the ledger balances.
  reg.add_replier(m.arrive, m.arrive);
  reg.add_replier(m.arrive, m.notify);
  reg.add_replier(m.arrive, m.release);
  return m;
}

std::vector<GlobalRef> make_tree_barrier(Machine& machine, int arrivals_per_node, int fanout) {
  CONCERT_CHECK(arrivals_per_node > 0 && fanout >= 1, "bad tree barrier shape");
  const std::size_t p = machine.node_count();
  std::vector<GlobalRef> refs(p);
  std::vector<TreeBarrierNode*> nodes(p);
  for (NodeId nid = 0; nid < p; ++nid) {
    auto [ref, b] = machine.node(nid).objects().create<TreeBarrierNode>(kTreeBarrierType);
    refs[nid] = ref;
    nodes[nid] = b;
    b->local_expected = arrivals_per_node;
  }
  for (NodeId nid = 0; nid < p; ++nid) {
    if (nid > 0) {
      const NodeId parent = (nid - 1) / static_cast<NodeId>(fanout);
      nodes[nid]->parent = refs[parent];
      nodes[parent]->children.push_back(refs[nid]);
    }
  }
  for (NodeId nid = 0; nid < p; ++nid) {
    nodes[nid]->pending = nodes[nid]->local_expected + static_cast<int>(nodes[nid]->children.size());
  }
  return refs;
}

}  // namespace concert
