#include "core/value.hpp"

#include <cstring>
#include <ostream>
#include <sstream>

namespace concert {

const char* Value::tag_name() const {
  switch (tag_) {
    case Tag::Nil: return "nil";
    case Tag::I64: return "i64";
    case Tag::F64: return "f64";
    case Tag::Ref: return "ref";
    case Tag::U64: return "u64";
  }
  return "?";
}

std::string Value::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

bool operator==(const Value& a, const Value& b) {
  if (a.tag_ != b.tag_) return false;
  switch (a.tag_) {
    case Value::Tag::Nil: return true;
    case Value::Tag::I64: return a.u_.i == b.u_.i;
    case Value::Tag::F64: return a.u_.d == b.u_.d;
    case Value::Tag::Ref: return a.u_.u == b.u_.u;
    case Value::Tag::U64: return a.u_.u == b.u_.u;
  }
  return false;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.tag()) {
    case Value::Tag::Nil: return os << "nil";
    case Value::Tag::I64: return os << v.as_i64();
    case Value::Tag::F64: return os << v.as_f64();
    case Value::Tag::Ref: {
      GlobalRef r = v.as_ref();
      return os << "ref(" << r.node << "," << r.index << ")";
    }
    case Value::Tag::U64: return os << v.as_u64() << "u";
  }
  return os;
}

}  // namespace concert
