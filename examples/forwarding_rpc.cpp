// Continuation forwarding across a multicomputer (paper Sec. 3.2.3 / 3.3).
//
// A request enters at node 0 and is forwarded through a ring of "service"
// objects spread over 8 nodes; each hop passes the *reply obligation* along
// (like call/cc), and only the final hop answers the original caller — no
// intermediate node ever waits, and no heap context is allocated for hops
// that execute directly from the message handler via proxy contexts.
//
// Build & run:  ./examples/forwarding_rpc
#include <iostream>

#include "apps/seqbench/seqbench.hpp"
#include "machine/sim_machine.hpp"

using namespace concert;

namespace {

// A service object on each node; hop(i) lives on node i % P.
struct Service {
  int visits = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kNodes = 8;
  MachineConfig cfg;
  cfg.costs = CostModel::cm5();
  SimMachine machine(kNodes, cfg);

  // The seqbench `chain` method is exactly a forwarding hop: it forwards its
  // continuation to the next link (here: an object on the next node) and the
  // base link replies 42 to the original caller.
  auto ids = seqbench::register_seqbench(machine.registry(), /*distributed=*/true);
  machine.registry().finalize();

  // One service object per node; the chain is invoked on them round-robin by
  // re-targeting each hop. For the demo we place the whole chain remotely by
  // targeting node 1's object from node 0: every hop after that is local to
  // node 1, so we instead show BOTH: a remote entry plus injected diversions
  // that scatter hops into the heap.
  auto [svc, obj] = machine.node(1).objects().create<Service>(0x5EBCu);
  (void)obj;

  std::cout << "chain schema: " << schema_name(machine.registry().schema(ids.chain))
            << " (continuation-passing, as the analysis requires for forwarding)\n\n";

  const Value v = machine.run_main(0, ids.chain, svc, {Value(64)});
  std::cout << "64-hop forwarded request answered: " << v << "\n";
  NodeStats s = machine.total_stats();
  std::cout << "messages sent: " << s.msgs_sent << " (entry + final reply; intermediate hops"
            << " ran on node 1's handler stack)\n";
  std::cout << "proxy contexts used: " << s.proxy_contexts
            << ", continuations forwarded off-node: " << s.continuations_forwarded << "\n\n";

  // Now scatter the chain: each hop has a 30% chance of being diverted (as if
  // the next link were remote), so continuations are materialized and travel.
  SimMachine m2(kNodes, cfg);
  ids = seqbench::register_seqbench(m2.registry(), true);
  m2.registry().finalize();
  auto [svc2, obj2] = m2.node(1).objects().create<Service>(0x5EBCu);
  (void)obj2;
  for (NodeId n = 0; n < kNodes; ++n) m2.node(n).injector().set_probability(0.3, 7 + n);
  const Value v2 = m2.run_main(0, ids.chain, svc2, {Value(64)});
  s = m2.total_stats();
  std::cout << "scattered chain still answers: " << v2 << "\n";
  std::cout << "continuations materialized: " << s.continuations_created
            << ", forwarded: " << s.continuations_forwarded
            << ", heap contexts: " << s.contexts_allocated << "\n";
  std::cout << "\nThe reply reached the original caller directly in both runs; no hop ever\n"
               "blocked waiting for a downstream answer.\n";
  return v.as_i64() == 42 && v2.as_i64() == 42 ? 0 : 1;
}
