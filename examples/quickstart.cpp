// Quickstart: write one fine-grained method the way the Concert compiler
// would emit it (a sequential stack version + a parallel heap version), run
// it under the hybrid execution model, and look at what the runtime did.
//
// The program: sum(lo, hi) = lo                      if hi == lo
//                          = sum(lo,mid) + sum(mid,hi) otherwise
// Every recursive invocation is conceptually a thread with an implicit
// future; the hybrid runtime executes almost all of them as plain C calls on
// the stack, falling back to heap-allocated activation frames only where
// something actually blocks (here: nothing, unless you enable injection).
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/invoke.hpp"
#include "machine/sim_machine.hpp"

using namespace concert;

namespace {

MethodId SUM = kInvalidMethod;
constexpr SlotId kL = 0, kR = 1;

// --- sequential (stack) version ---------------------------------------------
// Protocol: return nullptr + *ret on completion; on a failed sub-call, save
// live state via Frame::fallback and return its result up the stack.
Context* sum_seq(Node& nd, Value* ret, const CallerInfo& ci, GlobalRef self, const Value* args,
                 std::size_t nargs) {
  const std::int64_t lo = args[0].as_i64(), hi = args[1].as_i64();
  if (hi - lo == 1) {
    *ret = Value(lo);
    return nullptr;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  Frame f(nd, SUM, self, ci, args, nargs);
  Value l, r;
  if (!f.call(SUM, self, {Value(lo), Value(mid)}, kL, &l)) return f.fallback(1, {});
  if (!f.call(SUM, self, {Value(mid), Value(hi)}, kR, &r)) return f.fallback(2, {{kL, l}});
  *ret = Value(l.as_i64() + r.as_i64());
  return nullptr;
}

// --- parallel (heap) version ---------------------------------------------------
// A resumable state machine over the context; pc values line up with the
// sequential version's fallback sites.
void sum_par(Node& nd, Context& ctx) {
  ParFrame f(nd, ctx);
  const std::int64_t lo = ctx.args[0].as_i64(), hi = ctx.args[1].as_i64();
  const std::int64_t mid = lo + (hi - lo) / 2;
  switch (ctx.pc) {
    case 0:
      if (hi - lo == 1) {
        f.complete(Value(lo));
        return;
      }
      f.spawn(SUM, ctx.self, {Value(lo), Value(mid)}, kL);
      [[fallthrough]];
    case 1:
      f.spawn(SUM, ctx.self, {Value(mid), Value(hi)}, kR);
      if (!f.touch(2)) return;  // single counter-based touch of both futures
      [[fallthrough]];
    case 2:
      f.complete(Value(f.get(kL).as_i64() + f.get(kR).as_i64()));
      return;
  }
}

}  // namespace

int main() {
  // A 1-node machine with the default (hybrid, 3 interfaces) configuration.
  SimMachine machine(1, MachineConfig{});

  // Registration = what the compiler knows: both code versions, the frame
  // size, and the call-graph facts its analysis needs.
  MethodDecl d;
  d.name = "sum";
  d.seq = sum_seq;
  d.par = sum_par;
  d.frame_slots = 2;
  d.arg_count = 2;
  d.blocks_locally = true;  // "distributed compile": targets might be remote
  SUM = machine.registry().declare(d);
  machine.registry().add_callee(SUM, SUM);
  machine.registry().finalize();

  std::cout << "schema selected by the analysis: "
            << schema_name(machine.registry().schema(SUM)) << "\n";

  const Value v = machine.run_main(0, SUM, kNoObject, {Value(0), Value(100000)});
  std::cout << "sum(0..100000) = " << v << " (expect 4999950000)\n";

  const NodeStats s = machine.total_stats();
  std::cout << "\nWhat the hybrid runtime did:\n" << s.summary();
  std::cout << "simulated time: " << machine.elapsed_seconds() * 1e3 << " ms at "
            << machine.costs().clock_hz / 1e6 << " MHz\n";

  // Force some blocking to watch the fallback machinery: every ~1% of calls
  // is treated as if its data were remote.
  SimMachine machine2(1, MachineConfig{});
  SUM = machine2.registry().declare(d);
  machine2.registry().add_callee(SUM, SUM);
  machine2.registry().finalize();
  machine2.node(0).injector().set_probability(0.01, 42);
  const Value v2 = machine2.run_main(0, SUM, kNoObject, {Value(0), Value(100000)});
  std::cout << "\nwith 1% forced blocking: result still " << v2 << ", but "
            << machine2.total_stats().fallbacks << " activations unwound into the heap\n";
  return v.as_i64() == 4999950000 && v2.as_i64() == 4999950000 ? 0 : 1;
}
