// Message coalescing with the pluggable comms layer.
//
// Runs the same low-locality EM3D push program under the three flush
// policies and prints what each one does to the wire: how many network
// messages actually travel, how large the bundles get, and how many
// instructions the messaging layer burns. The program's *results* are
// identical in all three runs — the policies only change when staged
// messages leave a node's per-destination outbox.
//
// Build & run:  ./examples/coalescing
#include <iostream>

#include "apps/em3d/em3d.hpp"
#include "machine/sim_machine.hpp"

using namespace concert;

namespace {

NodeStats run_once(const FlushPolicy& policy, double* checksum) {
  em3d::Params p;
  p.graph_nodes = 256;
  p.degree = 8;
  p.iters = 3;
  p.local_fraction = 0.05;  // almost every edge crosses nodes

  MachineConfig cfg;
  cfg.costs = CostModel::cm5();
  cfg.flush_policy = policy;  // <-- the only thing that varies between runs
  SimMachine m(8, cfg);
  auto ids = em3d::register_em3d(m.registry(), p, 8);
  m.registry().finalize();
  auto world = em3d::build(m, ids, p);
  CONCERT_CHECK(em3d::run(m, ids, world, em3d::Version::Push), "em3d failed");

  *checksum = 0.0;
  for (const double v : em3d::extract(m, world)) *checksum += v;
  return m.total_stats();
}

}  // namespace

int main() {
  double base_sum = 0.0;
  bool same_results = true;
  for (const FlushPolicy policy : {FlushPolicy::immediate(), FlushPolicy::size_threshold(8),
                                   FlushPolicy::flush_on_idle()}) {
    double sum = 0.0;
    const NodeStats s = run_once(policy, &sum);
    if (policy.buffered()) {
      same_results = same_results && sum == base_sum;
    } else {
      base_sum = sum;
    }
    const std::uint64_t wire = s.outbox_flushes != 0 ? s.outbox_flushes : s.msgs_sent;
    std::cout << policy.name() << ":\n"
              << "  logical messages " << s.msgs_sent << ", wire messages " << wire;
    if (s.outbox_flushes != 0) {
      std::cout << " (mean bundle " << s.mean_bundle_size() << ")";
    }
    std::cout << "\n  messaging-layer instructions " << s.comm_instructions << "\n";
  }
  std::cout << "\nSame logical traffic, same answers — only the envelope count changes.\n";
  return same_results ? 0 : 1;
}
