// A user-defined synchronization structure built from first-class
// continuations (paper Sec. 3.3): phased workers meeting at a barrier whose
// arrivals *store their continuations* in a data structure; the last arrival
// replies through all of them.
//
// The worker below is also a template for writing phased parallel code in
// this model: a driver method whose sequential version immediately yields to
// its parallel state machine, which alternates "do a phase of work" with
// "arrive at the barrier".
//
// Build & run:  ./examples/custom_barrier
#include <iostream>

#include "core/barrier.hpp"
#include "core/invoke.hpp"
#include "machine/sim_machine.hpp"

using namespace concert;

namespace {

MethodId WORKER = kInvalidMethod;
MethodId ARRIVE = kInvalidMethod;

struct WorkerState {
  GlobalRef barrier;
  std::vector<std::int64_t> log;  // phase numbers as this worker saw them
};

constexpr SlotId kPhase = 0, kGen = 1;

Context* worker_seq(Node& nd, Value* ret, const CallerInfo& ci, GlobalRef self,
                    const Value* args, std::size_t nargs) {
  (void)ret;
  // Workers synchronize every phase; go straight to the parallel version.
  Frame f(nd, WORKER, self, ci, args, nargs);
  return f.yield_to_parallel(0, {});
}

void worker_par(Node& nd, Context& ctx) {
  auto& w = nd.objects().get<WorkerState>(ctx.self);
  ParFrame f(nd, ctx);
  const std::int64_t phases = ctx.args[0].as_i64();
  for (;;) {
    switch (ctx.pc) {
      case 0:
        f.save(kPhase, Value(std::int64_t{0}));
        ctx.pc = 1;
        break;
      case 1: {
        const std::int64_t phase = f.get(kPhase).as_i64();
        if (phase >= phases) {
          f.complete(Value(phase));
          return;
        }
        // "Work": record the phase, then meet everyone at the barrier.
        w.log.push_back(phase);
        f.spawn(ARRIVE, w.barrier, {}, kGen);
        if (!f.touch(2)) return;
        [[fallthrough]];
      }
      case 2: {
        // The barrier's reply is its generation — it must equal our phase:
        // nobody can be a phase ahead of anybody else.
        CONCERT_CHECK(f.get(kGen).as_i64() == f.get(kPhase).as_i64(),
                      "barrier generation mismatch");
        f.save(kPhase, Value(f.get(kPhase).as_i64() + 1));
        ctx.pc = 1;
        break;
      }
      default:
        CONCERT_UNREACHABLE("worker bad pc");
    }
  }
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 6;
  constexpr int kPhases = 5;
  SimMachine machine(kNodes, MachineConfig{});

  auto bar_methods = register_barrier_methods(machine.registry());
  ARRIVE = bar_methods.arrive;

  MethodDecl d;
  d.name = "worker";
  d.seq = worker_seq;
  d.par = worker_par;
  d.frame_slots = 2;
  d.arg_count = 1;
  d.blocks_locally = true;
  WORKER = machine.registry().declare(d);
  machine.registry().add_callee(WORKER, ARRIVE);
  machine.registry().finalize();

  const GlobalRef barrier = make_barrier(machine, 0, kNodes);

  // One worker per node, all spawned, one quiescence run.
  std::vector<Context*> roots;
  std::vector<WorkerState*> states;
  for (NodeId n = 0; n < kNodes; ++n) {
    auto [wref, ws] = machine.node(n).objects().create<WorkerState>(0x303Bu);
    ws->barrier = barrier;
    states.push_back(ws);
    Context& root = machine.node(n).alloc_context_raw(kInvalidMethod, 1);
    root.status = ContextStatus::Proxy;
    root.expect(0);
    roots.push_back(&root);
    machine.node(n).send(Message::invoke(n, n, WORKER, wref,
                                         {Value(std::int64_t{kPhases})},
                                         {root.ref(), 0, false}));
  }
  machine.run_until_quiescent();

  bool ok = true;
  for (NodeId n = 0; n < kNodes; ++n) {
    ok = ok && roots[n]->slot_full(0) && roots[n]->get(0).as_i64() == kPhases;
    machine.node(n).free_context(*roots[n]);
    std::cout << "worker " << n << " phases:";
    for (auto p : states[n]->log) std::cout << " " << p;
    std::cout << "\n";
  }
  const NodeStats s = machine.total_stats();
  std::cout << "\nbarrier arrivals executed on node 0's handler stack via proxy contexts: "
            << machine.node(0).stats.proxy_contexts << "\n";
  std::cout << "total continuations stored+replied: " << kNodes * kPhases << ", messages: "
            << s.msgs_sent << "\n";
  std::cout << (ok ? "all workers completed all phases in lockstep\n"
                   : "FAILURE: a worker did not complete\n");
  return ok ? 0 : 1;
}
