// Data-layout adaptation on a real kernel: the SOR stencil from the paper's
// Table 4, run over several block-cyclic layouts on a simulated 16-node CM-5.
// Watch the same program — unchanged — shift work from heap contexts to the
// stack as the layout gets blockier, exactly the adaptation the hybrid
// execution model exists for (and see Fig. 9: contexts live on the tile
// perimeters only).
//
// Build & run:  ./examples/stencil
#include <iostream>

#include "apps/sor/sor.hpp"
#include "machine/sim_machine.hpp"
#include "support/table.hpp"

using namespace concert;

int main() {
  sor::Params params;
  params.n = 32;
  params.pgrid = 4;
  params.iters = 3;

  TablePrinter t({"block size", "local fraction", "stack completions", "heap contexts",
                  "simulated ms", "grid == serial reference?"});

  for (std::size_t block : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    params.block = block;
    MachineConfig cfg;
    cfg.costs = CostModel::cm5();
    SimMachine machine(params.nodes(), cfg);
    auto ids = sor::register_sor(machine.registry(), params);
    machine.registry().finalize();
    auto world = sor::build(machine, ids, params);
    if (!sor::run(machine, ids, world)) {
      std::cerr << "driver failed\n";
      return 1;
    }
    const bool exact = sor::extract(machine, world) == sor::reference(params);
    const NodeStats s = machine.total_stats();
    t.add_row({std::to_string(block), fmt_double(params.layout().local_fraction(), 3),
               std::to_string(s.stack_completions), std::to_string(s.contexts_allocated),
               fmt_double(machine.elapsed_seconds() * 1e3, 2), exact ? "yes" : "NO"});
    if (!exact) return 1;
  }

  std::cout << "SOR " << params.n << "x" << params.n << " on a simulated 16-node CM-5, "
            << params.iters << " iterations, one invocation per cell read/update:\n\n";
  t.print(std::cout);
  std::cout << "\nSame program, same answers; only the data layout changed. The runtime\n"
               "discovered the locality at run time and moved the interior of each tile\n"
               "onto the stack.\n";
  return 0;
}
