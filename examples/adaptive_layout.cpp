// Object migration + tracing: watch the hybrid model re-adapt when data
// moves (the paper's future-work direction, built on its mechanisms).
//
// A client on node 0 repeatedly queries an object that starts on node 3.
// Every query is a remote invocation (messages, handler-stack execution).
// Then the object migrates to the client's node: the same queries become
// plain stack calls. Old names keep working through forwarding records.
// Finally the run's scheduler timeline is exported for chrome://tracing.
//
// Build & run:  ./examples/adaptive_layout [trace.json]
#include <fstream>
#include <iostream>

#include "apps/seqbench/seqbench.hpp"
#include "machine/sim_machine.hpp"
#include "machine/trace.hpp"
#include "objects/migration.hpp"

using namespace concert;

int main(int argc, char** argv) {
  MachineConfig cfg;
  cfg.costs = CostModel::cm5();
  cfg.trace = true;
  SimMachine machine(4, cfg);
  auto ids = seqbench::register_seqbench(machine.registry(), /*distributed=*/true);
  machine.registry().finalize();

  const GlobalRef arr = seqbench::make_qsort_array(machine, 3, 64, 99);

  auto query = [&](GlobalRef name) {
    return machine.run_main(0, ids.partition, name, {Value(0), Value(64)});
  };

  // Phase 1: the object is remote — every query ships a message.
  const auto msgs0 = machine.total_stats().msgs_sent;
  for (int i = 0; i < 5; ++i) query(arr);
  const auto remote_msgs = machine.total_stats().msgs_sent - msgs0;
  std::cout << "5 queries against the REMOTE object: " << remote_msgs << " messages\n";

  // Phase 2: migrate to the client's node; query through the NEW name.
  const GlobalRef here = migrate_object<seqbench::IntArray>(machine, arr, 0);
  const auto msgs1 = machine.total_stats().msgs_sent;
  for (int i = 0; i < 5; ++i) query(here);
  std::cout << "5 queries after migrating it here: "
            << machine.total_stats().msgs_sent - msgs1 << " messages (seed messages only)\n";

  // Phase 3: the STALE name still works — chased through the forwarding
  // record left at the old home.
  const auto msgs2 = machine.total_stats().msgs_sent;
  const Value v = query(arr);
  std::cout << "query via the stale name still answers " << v << " ("
            << machine.total_stats().msgs_sent - msgs2 << " messages: re-routed via node 3)\n";

  const char* path = argc > 1 ? argv[1] : "adaptive_layout_trace.json";
  std::ofstream out(path);
  write_chrome_trace(machine, out);
  std::cout << "\nscheduler timeline written to " << path
            << " (load in chrome://tracing or Perfetto)\n";
  return v.is_nil() ? 1 : 0;
}
